// Stall attribution and pipeline tracing: hand-built single-hazard
// programs pin each StallCause (the block-local scheduler resolves
// in-block dependencies at the compiler's assumed latencies, so runtime
// stalls only arise across block boundaries or when runtime latency
// exceeds the assumption); trace output is byte-deterministic; and an
// attached sink/profile never changes simulated timing.
#include <gtest/gtest.h>

#include <map>
#include <sstream>
#include <vector>

#include "apps/apps.hpp"
#include "ir/builder.hpp"
#include "obs/profile_report.hpp"
#include "obs/trace.hpp"
#include "sched/schedule.hpp"
#include "sim/cpu.hpp"
#include "sim/image.hpp"

namespace vuv {
namespace {

// ---- single-hazard programs ------------------------------------------------

// RAW across a block boundary: a MUL (latency 3) is the last useful op of
// one block, its consumer the first op of the fallthrough block. Perfect
// memory rules out kMemLatency; scalar code on a 2-wide VLIW rules out
// any cross-block FU conflict (every scalar op frees its unit next cycle).
TEST(StallCausesPinned, CrossBlockRawIsTheOnlyCause) {
  Workspace ws;
  Buffer out = ws.alloc(8);
  ProgramBuilder b;
  Reg base = b.movi(out.addr);
  Reg x = b.movi(7);
  Reg y = b.movi(6);
  Reg p = b.mul(x, y);  // latency 3: result not ready at the next block entry
  const i32 next = b.new_block();
  b.set_fallthrough(b.current_block(), next);
  b.switch_to(next);
  Reg q = b.add(p, x);  // must wait for the MUL writeback
  b.std_(q, base, 0, out.group);

  MachineConfig cfg = MachineConfig::vliw(2);
  cfg.mem.perfect = true;
  const SimResult r = run_program(b.take(), cfg, ws.mem());

  EXPECT_EQ(ws.read_u64(out), 49u);
  EXPECT_GT(r.stalls.raw, 0) << "cross-block MUL->ADD must slip";
  EXPECT_EQ(r.stalls.fu_conflict, 0);
  EXPECT_EQ(r.stalls.mem_latency, 0);
  EXPECT_EQ(r.stalls.total(), r.stall_cycles);
}

// Memory latency: a cold load (no warm-up, realistic hierarchy) completes
// far later than the compiler's hit assumption; the dependent ADDI charges
// the slip to kMemLatency, not kRaw.
TEST(StallCausesPinned, ColdMissIsMemLatencyNotRaw) {
  Workspace ws;
  Buffer in = ws.alloc(8);
  Buffer out = ws.alloc(8);
  ProgramBuilder b;
  Reg pin = b.movi(in.addr);
  Reg pout = b.movi(out.addr);
  Reg v = b.ldd(pin, 0, in.group);  // cold: full main-memory latency
  Reg w = b.addi(v, 5);
  b.std_(w, pout, 0, out.group);

  const SimResult r = run_program(b.take(), MachineConfig::vliw(2), ws.mem());

  EXPECT_EQ(ws.read_u64(out), 5u);
  EXPECT_GT(r.stalls.mem_latency, 0) << "cold miss must stall the consumer";
  EXPECT_EQ(r.stalls.raw, 0);
  EXPECT_EQ(r.stalls.fu_conflict, 0);
  EXPECT_EQ(r.stalls.total(), r.stall_cycles);
}

// FU conflict: with VL=16 on 4 lanes a vector op occupies its unit for 4
// cycles. Issue one as the last op of a block, then an independent vector
// op at the head of the fallthrough block: the only reason it cannot issue
// is the busy vector unit (perfect memory; operands long since ready).
TEST(StallCausesPinned, BusyVectorUnitIsFuConflict) {
  MachineConfig cfg = MachineConfig::table2_by_name("Vector1-2w");
  cfg.mem.perfect = true;
  const i64 vl = cfg.max_vl;  // 16 on 4 lanes: occupancy 4 cycles

  Workspace ws;
  Buffer in = ws.alloc(static_cast<u32>(vl) * 8);
  Buffer out = ws.alloc(static_cast<u32>(vl) * 8);
  ProgramBuilder b;
  Reg pin = b.movi(in.addr);
  Reg pout = b.movi(out.addr);
  b.setvl(vl);
  b.setvs(8);
  Reg va = b.vld(pin, 0, in.group);
  Reg v1 = b.v2(Opcode::V_PADDH, va, va);  // occupies the vector unit
  const i32 next = b.new_block();
  b.set_fallthrough(b.current_block(), next);
  b.switch_to(next);
  Reg v2 = b.v2(Opcode::V_PADDH, va, va);  // independent, but the unit is busy
  b.vst(v1, pout, 0, out.group);
  b.vst(v2, pout, 0, out.group);

  const SimResult r = run_program(b.take(), cfg, ws.mem());

  EXPECT_GT(r.stalls.fu_conflict, 0) << "vector unit occupancy must bind";
  EXPECT_EQ(r.stalls.raw, 0);
  EXPECT_EQ(r.stalls.mem_latency, 0);
  EXPECT_EQ(r.stalls.total(), r.stall_cycles);
}

// ---- trace determinism and null-sink identity ------------------------------

struct Traced {
  SimResult res;
  std::string trace;
  std::vector<obs::ChromeTraceSink::Event> events;
  StallProfile profile;
};

// One full observed run of gsm_dec on Vector2-4w. When `image` is given
// the Cpu replays the shared pre-lowered image (the sweep-runner path);
// otherwise it lowers its own. `with_sink` false leaves the trace empty.
Traced run_observed(const ScheduledProgram& sp, const MachineConfig& cfg,
                    const ExecImage* image, bool with_sink) {
  BuiltApp built = build_app(App::kGsmDec, variant_for(cfg.isa));
  Cpu cpu = image ? Cpu(sp, cfg, built.ws->mem(), *image)
                  : Cpu(sp, built.ws->mem());
  cpu.warm(0, built.ws->used());
  obs::ChromeTraceSink sink;
  Traced t;
  if (with_sink) cpu.set_trace(&sink);
  cpu.set_profile(&t.profile);
  t.res = cpu.run();
  EXPECT_EQ(built.verify(*built.ws), "");
  if (with_sink) {
    std::ostringstream os;
    sink.write(os);
    t.trace = os.str();
    t.events = sink.events();
  }
  return t;
}

void expect_same_timing(const SimResult& a, const SimResult& b) {
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.stall_cycles, b.stall_cycles);
  EXPECT_EQ(a.stalls.raw, b.stalls.raw);
  EXPECT_EQ(a.stalls.fu_conflict, b.stalls.fu_conflict);
  EXPECT_EQ(a.stalls.mem_latency, b.stalls.mem_latency);
  EXPECT_EQ(a.taken_branches, b.taken_branches);
  EXPECT_EQ(a.branch_bubbles, b.branch_bubbles);
  ASSERT_EQ(a.regions.size(), b.regions.size());
  for (size_t i = 0; i < a.regions.size(); ++i) {
    EXPECT_EQ(a.regions[i].cycles, b.regions[i].cycles);
    EXPECT_EQ(a.regions[i].stalls.total(), b.regions[i].stalls.total());
  }
}

TEST(Trace, DeterministicBytesAndNullSinkIdentity) {
  const MachineConfig cfg = MachineConfig::table2_by_name("Vector2-4w");
  BuiltApp built = build_app(App::kGsmDec, variant_for(cfg.isa));
  const ScheduledProgram sp = compile(std::move(built.program), cfg);
  const ExecImage image = lower_image(sp, cfg);

  const Traced a = run_observed(sp, cfg, nullptr, true);
  const Traced b = run_observed(sp, cfg, nullptr, true);
  const Traced c = run_observed(sp, cfg, &image, true);  // shared image
  const Traced plain = run_observed(sp, cfg, nullptr, false);

  ASSERT_FALSE(a.trace.empty());
  EXPECT_EQ(a.trace, b.trace) << "trace must be byte-deterministic";
  EXPECT_EQ(a.trace, c.trace) << "shared image must not change the trace";

  // Observation can never perturb timing: a traced+profiled run reports
  // exactly what an unobserved run reports.
  expect_same_timing(a.res, plain.res);
  expect_same_timing(a.res, c.res);

  // The profile partitions stall_cycles over static ops.
  Cycle prof_total = 0;
  for (const auto& op : a.profile.by_op) prof_total += op.total();
  EXPECT_EQ(prof_total, a.res.stall_cycles);
  EXPECT_EQ(a.profile.by_op.size(), image.ops.size());

  // Timestamps are monotone per track (what the CI trace job re-checks on
  // the emitted JSON with an independent parser).
  ASSERT_FALSE(a.events.empty());
  std::map<i32, Cycle> last;
  for (const obs::ChromeTraceSink::Event& e : a.events) {
    auto it = last.find(e.tid);
    if (it != last.end()) {
      EXPECT_GE(e.ts, it->second);
    }
    last[e.tid] = e.ts;
  }
}

// profile_rows: sorted by total stall descending, zero-stall ops dropped,
// and coordinates index back into the image.
TEST(Trace, ProfileRowsSortedAndConsistent) {
  const MachineConfig cfg = MachineConfig::table2_by_name("Vector2-4w");
  BuiltApp built = build_app(App::kGsmDec, variant_for(cfg.isa));
  const ScheduledProgram sp = compile(std::move(built.program), cfg);

  BuiltApp run_ws = build_app(App::kGsmDec, variant_for(cfg.isa));
  Cpu cpu(sp, run_ws.ws->mem());
  cpu.warm(0, run_ws.ws->used());
  StallProfile profile;
  cpu.set_profile(&profile);
  const SimResult res = cpu.run();

  const std::vector<obs::ProfileRow> rows =
      obs::profile_rows(profile, sp.prog, cpu.image());
  ASSERT_FALSE(rows.empty()) << "gsm_dec on a realistic hierarchy must stall";
  Cycle total = 0;
  for (size_t i = 0; i < rows.size(); ++i) {
    EXPECT_GT(rows[i].stalls.total(), 0) << "zero-stall ops must be dropped";
    if (i > 0) {
      EXPECT_GE(rows[i - 1].stalls.total(), rows[i].stalls.total());
    }
    EXPECT_LT(rows[i].op_index, cpu.image().ops.size());
    total += rows[i].stalls.total();
  }
  EXPECT_EQ(total, res.stall_cycles);

  std::ostringstream text, json;
  const obs::ProfileMeta meta{"gsm_dec", cfg.name, "realistic"};
  obs::write_profile_text(text, meta, res, rows, 10);
  obs::write_profile_json(json, meta, res, rows, 10);
  EXPECT_NE(text.str().find("top stalling ops"), std::string::npos);
  EXPECT_NE(json.str().find("\"stalls\""), std::string::npos);
}

}  // namespace
}  // namespace vuv
