// Tests of the static verification passes (src/verify): the IR lint and the
// independent post-schedule checker.
//
// Each rule is exercised by injecting the defect it guards against. The
// builder's take() runs the structural subset and throws, so structural
// defects are injected by mutating the Program *after* take(); dataflow
// defects (which only lint_program flags) are built directly. Schedule
// defects are injected by corrupting a compiled ScheduledProgram or its
// lowered ExecImage.
//
// The AllApps matrix at the bottom locks in the repo-wide invariant the
// vuv_lint CI gate enforces: every registered app/variant lints with zero
// errors, and the only warnings are the deliberate cross-block
// redundant-setvl/setvs demonstrations.
#include <gtest/gtest.h>

#include "apps/apps.hpp"
#include "ir/builder.hpp"
#include "sched/schedule.hpp"
#include "sim/image.hpp"
#include "verify/irlint.hpp"
#include "verify/schedcheck.hpp"

namespace vuv {
namespace {

using lint::DiagReport;
using lint::LintOptions;
using lint::SchedCheckOptions;
using lint::Severity;
using lint::check_image;
using lint::check_schedule;
using lint::lint_program;

/// Smallest useful clean program: two defs, a use, a HALT.
Program tiny_program() {
  ProgramBuilder b;
  Reg x = b.movi(5);
  Reg y = b.add(x, x);
  b.stw(y, b.movi(0), 0, 1);
  return b.take();
}

i64 count_opcode(const Program& p, Opcode op) {
  i64 n = 0;
  for (const BasicBlock& blk : p.blocks)
    for (const Operation& o : blk.ops) n += o.op == op;
  return n;
}

// ---- structural rules (injected post-take) ----------------------------------

TEST(IrLint, CleanProgramHasNoDiagnostics) {
  const DiagReport r = lint_program(tiny_program());
  EXPECT_EQ(r.errors(), 0) << r.summary();
  EXPECT_EQ(r.warnings(), 0) << r.summary();
}

TEST(IrLint, FlagsMissingHalt) {
  Program p = tiny_program();
  p.blocks.back().ops.pop_back();  // drop the HALT take() appended
  const DiagReport r = lint_program(p);
  EXPECT_GE(r.count_rule("no-halt"), 1) << r.summary();
  EXPECT_GE(r.errors(), 1);
}

TEST(IrLint, FlagsEmptyProgram) {
  const DiagReport r = lint_program(Program{});
  EXPECT_GE(r.count_rule("empty-program"), 1) << r.summary();
}

TEST(IrLint, FlagsBadEntry) {
  Program p = tiny_program();
  p.entry = 999;
  const DiagReport r = lint_program(p);
  EXPECT_GE(r.count_rule("bad-entry"), 1) << r.summary();
}

TEST(IrLint, FlagsBadBranchTarget) {
  ProgramBuilder b;
  Reg x = b.movi(1);
  b.for_range(0, 4, 1, [&](Reg i) { b.mov_to(x, b.add(x, i)); });
  b.stw(x, b.movi(0), 0, 1);
  Program p = b.take();
  bool corrupted = false;
  for (BasicBlock& blk : p.blocks)
    for (Operation& o : blk.ops)
      if (o.info().flags.branch && !corrupted) {
        o.target_block = 999;
        corrupted = true;
      }
  ASSERT_TRUE(corrupted) << "for_range emitted no branch";
  const DiagReport r = lint_program(p);
  EXPECT_GE(r.count_rule("bad-branch-target"), 1) << r.summary();
}

TEST(IrLint, FlagsMidBlockTerminator) {
  Program p = tiny_program();
  Operation j;
  j.op = Opcode::JMP;
  j.target_block = 0;
  p.blocks[0].ops.insert(p.blocks[0].ops.begin(), j);
  const DiagReport r = lint_program(p);
  EXPECT_GE(r.count_rule("mid-block-terminator"), 1) << r.summary();
}

TEST(IrLint, FlagsWrongOperandClass) {
  Program p = tiny_program();
  bool corrupted = false;
  for (Operation& o : p.blocks[0].ops)
    if (o.op == Opcode::ADD) {
      o.src[0] = Reg{RegClass::kSimd, 0};  // ADD expects int sources
      corrupted = true;
    }
  ASSERT_TRUE(corrupted);
  p.reg_count[static_cast<size_t>(RegClass::kSimd)] = 1;  // id itself valid
  const DiagReport r = lint_program(p);
  EXPECT_GE(r.count_rule("operand-class"), 1) << r.summary();
}

TEST(IrLint, FlagsOutOfRangeRegister) {
  Program p = tiny_program();
  p.blocks[0].ops[1].src[0].id = 12345;
  const DiagReport r = lint_program(p);
  EXPECT_GE(r.count_rule("operand-range"), 1) << r.summary();
}

TEST(IrLint, FlagsSetvlImmRange) {
  Program p = tiny_program();
  Operation s;
  s.op = Opcode::SETVLI;
  s.imm = 0;  // legal range is [1, 16]
  p.blocks[0].ops.insert(p.blocks[0].ops.begin(), s);
  const DiagReport r = lint_program(p);
  EXPECT_GE(r.count_rule("imm-range"), 1) << r.summary();
}

// ---- dataflow rules ---------------------------------------------------------

TEST(IrLint, FlagsUninitRead) {
  Program p = tiny_program();
  // Erase the defining MOVI: the ADD now reads a register no path defines.
  ASSERT_EQ(p.blocks[0].ops[0].op, Opcode::MOVI);
  p.blocks[0].ops.erase(p.blocks[0].ops.begin());
  const DiagReport r = lint_program(p);
  EXPECT_GE(r.count_rule("uninit-read"), 1) << r.summary();
  EXPECT_GE(r.errors(), 1);
}

TEST(IrLint, FlagsMaybeUninitRead) {
  ProgramBuilder b;
  Reg flag = b.movi(1);
  Reg x = b.ireg();
  b.unless(Opcode::BNE, flag, flag, [&] { b.mov_to(x, b.movi(7)); });
  b.stw(b.add(x, x), b.movi(0), 0, 1);  // x defined on only one path
  const DiagReport r = lint_program(b.take());
  EXPECT_GE(r.count_rule("maybe-uninit-read"), 1) << r.summary();
  EXPECT_EQ(r.errors(), 0) << r.summary();  // warning, not error
}

TEST(IrLint, FlagsDeadWrite) {
  ProgramBuilder b;
  Reg live = b.movi(3);
  b.movi(42);  // result never read on any path
  b.stw(live, b.movi(0), 0, 1);
  const DiagReport r = lint_program(b.take());
  EXPECT_EQ(r.count_rule("dead-write"), 1) << r.summary();
}

TEST(IrLint, FlagsRedundantSetvl) {
  ProgramBuilder b;
  b.setvl(4);
  Operation dup;  // raw emit bypasses the builder's peephole
  dup.op = Opcode::SETVLI;
  dup.imm = 4;
  b.emit(dup);
  b.setvs(8);
  Reg v = b.vld(b.movi(0), 0, 1);
  b.vst(v, b.movi(0), 64, 1);
  const DiagReport r = lint_program(b.take());
  EXPECT_GE(r.count_rule("redundant-setvl"), 1) << r.summary();
}

TEST(IrLint, FlagsUnreachableBlock) {
  Program p = tiny_program();
  BasicBlock dead;  // well-formed (ends in HALT) but no path from entry
  dead.id = static_cast<i32>(p.blocks.size());
  Operation h;
  h.op = Opcode::HALT;
  dead.ops.push_back(h);
  p.blocks.push_back(dead);
  const DiagReport r = lint_program(p);
  EXPECT_GE(r.count_rule("unreachable-block"), 1) << r.summary();
}

TEST(IrLint, FlagsVlRange) {
  ProgramBuilder b;
  Reg c = b.movi(20);  // provably outside [1, 16]
  b.setvl(c);
  b.setvs(8);
  Reg v = b.vld(b.movi(0), 0, 1);
  b.vst(v, b.movi(0), 256, 1);
  const DiagReport r = lint_program(b.take());
  EXPECT_GE(r.count_rule("vl-range"), 1) << r.summary();
}

TEST(IrLint, FlagsScalarStoreOutOfBounds) {
  ProgramBuilder b;
  b.stw(b.movi(1), b.movi(100), 0, 1);  // provable address 100, extent 64
  LintOptions o;
  o.mem_extent = 64;
  const DiagReport r = lint_program(b.take(), o);
  EXPECT_GE(r.count_rule("mem-oob"), 1) << r.summary();
}

TEST(IrLint, FlagsVectorAccessOutOfBounds) {
  ProgramBuilder b;
  b.setvl(16);
  b.setvs(8);  // footprint 16 * 8 = 128 bytes from base 0
  Reg v = b.vld(b.movi(0), 0, 1);
  b.vst(v, b.movi(0), 0, 1);
  LintOptions o;
  o.mem_extent = 64;
  const DiagReport r = lint_program(b.take(), o);
  EXPECT_GE(r.count_rule("vec-oob"), 1) << r.summary();
}

TEST(IrLint, FlagsVlVsDefaultsAndZeroStride) {
  {
    ProgramBuilder b;  // vector access before any SETVL/SETVS
    Reg v = b.vld(b.movi(0), 0, 1);
    b.vst(v, b.movi(0), 128, 1);
    const DiagReport r = lint_program(b.take());
    EXPECT_GE(r.count_rule("vl-unset"), 1) << r.summary();
    EXPECT_GE(r.count_rule("vs-unset"), 1) << r.summary();
  }
  {
    ProgramBuilder b;
    b.setvl(8);
    b.setvs(b.movi(0));  // provably zero stride
    Reg v = b.vld(b.movi(0), 0, 1);
    b.vst(v, b.movi(0), 64, 1);
    const DiagReport r = lint_program(b.take());
    EXPECT_GE(r.count_rule("vs-zero"), 1) << r.summary();
  }
}

// ---- builder peephole -------------------------------------------------------

TEST(Builder, ElidesRedundantSetvlSetvsWithinBlock) {
  ProgramBuilder b;
  b.setvl(4);
  b.setvl(4);  // same block, same imm, no intervening SETVL: elided
  b.setvs(8);
  b.setvs(8);
  Reg v = b.vld(b.movi(0), 0, 1);
  b.vst(v, b.movi(0), 64, 1);
  const Program p = b.take();
  EXPECT_EQ(count_opcode(p, Opcode::SETVLI), 1);
  EXPECT_EQ(count_opcode(p, Opcode::SETVSI), 1);
  EXPECT_EQ(lint_program(p).warnings(), 0);
}

TEST(Builder, KeepsSetvlAcrossValueChange) {
  ProgramBuilder b;
  b.setvl(4);
  b.setvs(8);
  Reg v = b.vld(b.movi(0), 0, 1);
  b.vst(v, b.movi(0), 64, 1);
  b.setvl(8);  // different value: must not be elided
  b.setvs(16);
  Reg w = b.vld(b.movi(128), 0, 1);
  b.vst(w, b.movi(128), 256, 1);
  const Program p = b.take();
  EXPECT_EQ(count_opcode(p, Opcode::SETVLI), 2);
  EXPECT_EQ(count_opcode(p, Opcode::SETVSI), 2);
}

// ---- post-schedule checker --------------------------------------------------

/// A vector program with enough ops to corrupt in interesting ways.
Program sched_source() {
  ProgramBuilder b;
  b.setvl(8);
  b.setvs(8);
  Reg base = b.movi(0);
  Reg v = b.vld(base, 0, 1);
  Reg w = b.v2(Opcode::V_PADDB, v, v);
  b.vst(w, base, 64, 1);
  Reg x = b.movi(7);
  b.stw(b.add(x, x), base, 128, 2);
  return b.take();
}

TEST(SchedCheck, AcceptsCleanCompile) {
  const Program src = sched_source();
  const MachineConfig cfg = MachineConfig::vector2(2);
  const ScheduledProgram sp = compile(src, cfg);
  const DiagReport r = check_schedule(sp, &src);
  EXPECT_EQ(r.errors(), 0) << r.summary();
  const ExecImage img = lower_image(sp, cfg);
  EXPECT_EQ(check_image(sp, img).errors(), 0);
}

TEST(SchedCheck, RejectsDuplicatedOpInWord) {
  const Program src = sched_source();
  ScheduledProgram sp = compile(src, MachineConfig::vector2(2));
  ASSERT_FALSE(sp.blocks[0].words.empty());
  VliwWord& w0 = sp.blocks[0].words[0];
  w0.ops.push_back(w0.ops[0]);
  const DiagReport r = check_schedule(sp, &src);
  EXPECT_GE(r.count_rule("sched-shape"), 1) << r.summary();
}

TEST(SchedCheck, RejectsPhysRegOutOfRange) {
  ScheduledProgram sp = compile(sched_source(), MachineConfig::vector2(2));
  bool corrupted = false;
  for (Operation& o : sp.prog.blocks[0].ops)
    if (o.dst.cls == RegClass::kInt && !corrupted) {
      o.dst.id = 10000;
      corrupted = true;
    }
  ASSERT_TRUE(corrupted);
  const DiagReport r = check_schedule(sp, nullptr);
  EXPECT_GE(r.count_rule("phys-out-of-range"), 1) << r.summary();
}

TEST(SchedCheck, RejectsAlteredOpAgainstSource) {
  const Program src = sched_source();
  ScheduledProgram sp = compile(src, MachineConfig::vector2(2));
  bool corrupted = false;
  for (Operation& o : sp.prog.blocks[0].ops)
    if (o.op == Opcode::MOVI && !corrupted) {
      o.imm += 1;
      corrupted = true;
    }
  ASSERT_TRUE(corrupted);
  const DiagReport r = check_schedule(sp, &src);
  EXPECT_GE(r.count_rule("ir-mismatch"), 1) << r.summary();
}

TEST(SchedCheck, RejectsSchedVlMismatch) {
  const Program src = sched_source();
  ScheduledProgram sp = compile(src, MachineConfig::vector2(2));
  bool corrupted = false;
  for (BlockSchedule& bs : sp.blocks)
    for (size_t i = 0; i < bs.sched_vl.size() && !corrupted; ++i)
      if (bs.sched_vl[i] > 0 && bs.sched_vl[i] != 3) {
        bs.sched_vl[i] = 3;
        corrupted = true;
      }
  ASSERT_TRUE(corrupted) << "no vector op with a pinned VL";
  const DiagReport r = check_schedule(sp, &src);
  EXPECT_GE(r.count_rule("sched-vl-mismatch"), 1) << r.summary();
}

TEST(SchedCheck, RejectsCorruptedImage) {
  const MachineConfig cfg = MachineConfig::vector2(2);
  const ScheduledProgram sp = compile(sched_source(), cfg);
  ExecImage img = lower_image(sp, cfg);
  ASSERT_GE(img.ops.size(), 2u);
  std::swap(img.ops[0], img.ops[1]);  // op order no longer matches
  const DiagReport r = check_image(sp, img);
  EXPECT_GE(r.count_rule("image-mismatch"), 1) << r.summary();
}

TEST(SchedCheck, StrictCompileRejectsLintError) {
  ProgramBuilder b;
  Reg c = b.movi(20);
  b.setvl(c);  // vl-range error under the lint
  b.setvs(8);
  Reg v = b.vld(b.movi(0), 0, 1);
  b.vst(v, b.movi(0), 256, 1);
  const Program p = b.take();
  CompileOptions opts;
  opts.strict_verify = true;
  EXPECT_THROW(compile(p, MachineConfig::vector2(2), opts), CompileError);
  EXPECT_NO_THROW(compile(p, MachineConfig::vector2(2)));  // default: permissive
}

// ---- diagnostics plumbing ---------------------------------------------------

TEST(Diag, SortIsDeterministicAndJsonEscapes) {
  DiagReport r;
  r.add(Severity::kWarning, "dead-write", "u", 2, 1, "b");
  r.add(Severity::kError, "uninit-read", "u", 2, 1, "a \"quoted\"\n");
  r.add(Severity::kError, "no-halt", "t", -1, -1, "c");
  r.sort();
  ASSERT_EQ(r.diags().size(), 3u);
  EXPECT_EQ(r.diags()[0].unit, "t");
  EXPECT_EQ(r.diags()[1].severity, Severity::kError);  // errors before warnings
  EXPECT_EQ(r.summary(), "2 errors, 1 warnings");
  const std::string js = lint::to_json(r.diags());
  EXPECT_NE(js.find("\\\"quoted\\\""), std::string::npos) << js;
  EXPECT_NE(js.find("\\n"), std::string::npos) << js;
}

// ---- repo-wide invariant (what the vuv_lint CI gate enforces) ---------------

struct LintCase {
  App app;
  Variant variant;
};

std::vector<LintCase> lint_cases() {
  std::vector<LintCase> cases;
  for (App a : all_apps())
    for (Variant v : {Variant::kScalar, Variant::kMusimd, Variant::kVector})
      cases.push_back(LintCase{a, v});
  return cases;
}

std::string lint_case_name(const ::testing::TestParamInfo<LintCase>& info) {
  return std::string(app_name(info.param.app)) + "_" +
         variant_name(info.param.variant);
}

class AllAppsLint : public ::testing::TestWithParam<LintCase> {};

TEST_P(AllAppsLint, LintsCleanWithOnlyDeliberateWarnings) {
  const LintCase& c = GetParam();
  BuiltApp built = build_app(c.app, c.variant);
  LintOptions o;
  o.unit = built.name;
  o.mem_extent = built.ws->used();
  const DiagReport r = lint_program(built.program, o);
  EXPECT_EQ(r.errors(), 0) << (r.first_error() ? to_string(*r.first_error())
                                               : r.summary());
  // The app emitters are dead-write and uninit clean; the only tolerated
  // warnings are the cross-block redundant-setvl/setvs left as lint
  // demonstrations (loop bodies re-pinning VL/VS each iteration).
  EXPECT_EQ(r.count_rule("dead-write"), 0) << r.summary();
  EXPECT_EQ(r.count_rule("dead-setvl"), 0) << r.summary();
  EXPECT_EQ(r.count_rule("dead-setvs"), 0) << r.summary();
  EXPECT_EQ(r.count_rule("uninit-read"), 0) << r.summary();
  EXPECT_EQ(r.count_rule("maybe-uninit-read"), 0) << r.summary();
  EXPECT_EQ(r.warnings(), r.count_rule("redundant-setvl") +
                              r.count_rule("redundant-setvs"))
      << r.summary();
}

INSTANTIATE_TEST_SUITE_P(Registry, AllAppsLint,
                         ::testing::ValuesIn(lint_cases()), lint_case_name);

}  // namespace
}  // namespace vuv
