// Small argument-parsing and output helpers shared by the vuv_* command-
// line tools.
#pragma once

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/types.hpp"

namespace vuv {
namespace cli {

/// One documented command-line option. `desc` may span several lines
/// (embedded '\n'); continuation lines are indented to the description
/// column by Usage::text().
struct UsageOpt {
  const char* flag;
  const char* desc;
};

/// Declarative --help text shared by every vuv_* tool, rendered by one
/// formatter so all CLIs read alike and docs/CLI.md can be generated (and
/// CI-diffed) from the binaries themselves — see scripts/gen_cli_md.sh.
struct Usage {
  const char* name;     // binary name, e.g. "vuv_sweep"
  const char* summary;  // one line: what the tool does
  /// Optional free paragraph(s) after the summary ("" for none). Printed
  /// verbatim, so pre-wrap to < 80 columns.
  const char* description = "";
  std::vector<UsageOpt> options;
  std::vector<const char*> examples;

  /// Deterministic rendering: synopsis, summary, description, an aligned
  /// options table (with `-h, --help` appended automatically), examples.
  std::string text() const {
    std::string out = "usage: ";
    out += name;
    out += " [options]\n\n";
    out += summary;
    out += "\n";
    if (description[0] != '\0') {
      out += "\n";
      out += description;
      out += "\n";
    }
    std::vector<UsageOpt> opts = options;
    opts.push_back({"-h, --help", "print this help and exit"});
    size_t width = 0;
    for (const UsageOpt& o : opts) width = std::max(width, std::string(o.flag).size());
    out += "\noptions:\n";
    for (const UsageOpt& o : opts) {
      std::string line = "  ";
      line += o.flag;
      line.resize(2 + width + 2, ' ');
      std::stringstream desc(o.desc);
      std::string part;
      bool first = true;
      while (std::getline(desc, part)) {
        if (first) {
          out += line + part + "\n";
          first = false;
        } else {
          out += std::string(2 + width + 2, ' ') + part + "\n";
        }
      }
      if (first) out += line + "\n";  // empty description
    }
    if (!examples.empty()) {
      out += "\nexamples:\n";
      for (const char* e : examples) {
        out += "  ";
        out += e;
        out += "\n";
      }
    }
    return out;
  }
};

inline std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> out;
  std::stringstream ss(s);
  std::string item;
  while (std::getline(ss, item, ','))
    if (!item.empty()) out.push_back(item);
  return out;
}

/// Parse a strictly positive integer option value. Rejects non-numeric
/// input, trailing junk, zero and negative values with a clear error
/// instead of the undefined/surprising behavior of a bare atoi/stoi.
inline i32 parse_positive_int(const std::string& flag, const std::string& v) {
  errno = 0;
  char* end = nullptr;
  const long n = std::strtol(v.c_str(), &end, 10);
  if (v.empty() || end != v.c_str() + v.size() || errno == ERANGE ||
      n <= 0 || n > 1'000'000)
    throw Error("invalid value for " + flag + ": '" + v +
                "' (expected a positive integer)");
  return static_cast<i32>(n);
}

/// Parse a non-negative 64-bit integer option value (seed ids, counts).
/// Same contract as parse_positive_int: non-numeric input, trailing junk,
/// overflow and negative values all fail with the usage error instead of
/// the silent-truncation/uncaught-exception behavior of a bare stoll.
inline i64 parse_nonneg_i64(const std::string& flag, const std::string& v) {
  errno = 0;
  char* end = nullptr;
  const long long n = std::strtoll(v.c_str(), &end, 10);
  if (v.empty() || end != v.c_str() + v.size() || errno == ERANGE || n < 0)
    throw Error("invalid value for " + flag + ": '" + v +
                "' (expected a non-negative integer)");
  return static_cast<i64>(n);
}

/// Parse a strictly positive floating-point option value. Same contract
/// as parse_positive_int: non-numeric input, trailing junk ("2.0x"),
/// overflow, zero, negatives and non-finite values all fail with the
/// usage error — never an uncaught std::invalid_argument out of main.
inline double parse_positive_double(const std::string& flag,
                                    const std::string& v) {
  errno = 0;
  char* end = nullptr;
  const double d = std::strtod(v.c_str(), &end);
  if (v.empty() || end != v.c_str() + v.size() || errno == ERANGE ||
      !(d > 0) || d > 1e12)
    throw Error("invalid value for " + flag + ": '" + v +
                "' (expected a positive number)");
  return d;
}

/// Output format implied by --format/--out: an explicit `format` wins;
/// otherwise the output path's extension decides (.json -> json,
/// .csv -> csv), falling back to `dflt` (stdout default: a table).
inline std::string pick_format(const std::string& format,
                               const std::string& out_path,
                               const std::string& dflt = "table") {
  if (!format.empty()) return format;
  if (out_path.ends_with(".json")) return "json";
  if (out_path.ends_with(".csv")) return "csv";
  return dflt;
}

/// Run `body(ostream&)` against stdout (path empty or "-") or against a
/// freshly opened file, reporting where the output went on the side
/// channel. Throws Error when the file cannot be opened.
template <typename Body>
void write_output(const std::string& path, Body&& body) {
  if (path.empty() || path == "-") {
    body(std::cout);
    return;
  }
  std::ofstream out(path);
  if (!out) throw Error("cannot write " + path);
  body(out);
  std::cerr << "wrote " << path << "\n";
}

}  // namespace cli
}  // namespace vuv
