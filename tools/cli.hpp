// Small argument-parsing helpers shared by the vuv_* command-line tools.
#pragma once

#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/types.hpp"

namespace vuv {
namespace cli {

inline std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> out;
  std::stringstream ss(s);
  std::string item;
  while (std::getline(ss, item, ','))
    if (!item.empty()) out.push_back(item);
  return out;
}

/// Parse a strictly positive integer option value. Rejects non-numeric
/// input, trailing junk, zero and negative values with a clear error
/// instead of the undefined/surprising behavior of a bare atoi/stoi.
inline i32 parse_positive_int(const std::string& flag, const std::string& v) {
  errno = 0;
  char* end = nullptr;
  const long n = std::strtol(v.c_str(), &end, 10);
  if (v.empty() || end != v.c_str() + v.size() || errno == ERANGE ||
      n <= 0 || n > 1'000'000)
    throw Error("invalid value for " + flag + ": '" + v +
                "' (expected a positive integer)");
  return static_cast<i32>(n);
}

}  // namespace cli
}  // namespace vuv
