// vuv_client — command-line client for the vuv_serve daemon. Submits a
// sweep matrix (or a raw .vuvgen program), streams the per-cell results
// and renders them through the same report writers as vuv_sweep, so a
// served sweep is byte-identical to a local one (docs/PROTOCOL.md,
// DESIGN.md "Serving and batching").
//
//   vuv_client --port 7777                       # default 60-cell matrix
//   vuv_client --port 7777 --apps gsm_dec --configs VLIW-2w --out s.json
//   vuv_client --port 7777 --program prog.vuvgen
//   vuv_client --port 7777 --stats               # server metrics snapshot
//   vuv_client --port 7777 --cancel-after 3      # cancellation round-trip
#include <chrono>
#include <fstream>
#include <iostream>
#include <sstream>
#include <thread>

#include "cli.hpp"
#include "runner/report.hpp"
#include "serve/client.hpp"

using namespace vuv;

namespace {

const cli::Usage kUsage{
    "vuv_client",
    "Submit simulation requests to a vuv_serve daemon and collect the\n"
    "streamed results (wire format: docs/PROTOCOL.md).",
    "Matrix requests reuse vuv_sweep's report writers, so --out/--format\n"
    "output is byte-identical to running the same matrix locally.",
    {
        {"--host ADDR", "server address (default 127.0.0.1)"},
        {"--port N", "server TCP port (required; see the daemon's\n"
                     "VUV_SERVE READY line)"},
        {"--id NAME", "request correlation id (default: cli)"},
        {"--apps a,b,...", "apps to request (default: server-side default,\n"
                           "the six Table-1 codecs)"},
        {"--configs a,b,...",
         "Table-2 configuration names (default: all ten)"},
        {"--perfect", "request the perfect-memory matrix (paper 5.1)"},
        {"--priority P",
         "scheduling class: low, normal or high (default\n"
         "normal; protocol v1.1) — weights the server's\n"
         "per-client fair dispatch, never changes results"},
        {"--variant V", "force one code variant: scalar, musimd or vector"},
        {"--filter SUBSTR", "server-side cell-key substring filter"},
        {"--program FILE",
         "program mode: send FILE's .vuvgen text instead of a\n"
         "matrix; each requested config runs it through the\n"
         "differential oracle"},
        {"--out PATH",
         "write the report to PATH; format from the extension\n"
         "(.json = BENCH-style json, .csv = csv, else table)"},
        {"--format F", "override the report format: json, csv or table"},
        {"--name NAME", "bench name embedded in json reports (default: sweep)"},
        {"--stats", "print the server's stats frame (JSON) and exit"},
        {"--ping", "one ping/pong round-trip and exit"},
        {"--cancel-after N", "cancel the request after N streamed cells"},
        {"--retries N",
         "on a retriable error (overloaded, shutting_down),\n"
         "retry up to N times with linear backoff (default 0)"},
    },
    {
        "vuv_client --port 7777                       # default 60-cell matrix",
        "vuv_client --port 7777 --apps gsm_dec --configs VLIW-2w --out s.json",
        "vuv_client --port 7777 --program prog.vuvgen",
        "vuv_client --port 7777 --stats",
    }};

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw Error("cannot read " + path);
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

}  // namespace

int main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  int port = 0;
  serve::SimRequestNames req;
  req.id = "cli";
  std::string out_path, format, name = "sweep", program_path;
  bool do_stats = false, do_ping = false;
  i32 cancel_after = 0, retries = 0;

  try {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      auto value = [&]() -> std::string {
        if (i + 1 >= argc) throw Error("missing value for " + arg);
        return argv[++i];
      };
      if (arg == "-h" || arg == "--help") {
        std::cout << kUsage.text();
        return 0;
      } else if (arg == "--host") {
        host = value();
      } else if (arg == "--port") {
        port = cli::parse_positive_int(arg, value());
      } else if (arg == "--id") {
        req.id = value();
      } else if (arg == "--apps") {
        req.apps = cli::split_csv(value());
      } else if (arg == "--configs") {
        req.configs = cli::split_csv(value());
      } else if (arg == "--perfect") {
        req.perfect = true;
      } else if (arg == "--priority") {
        // Validate locally so a typo fails with usage text, not a server
        // round-trip ending in bad_request.
        req.priority = serve::priority_name(serve::priority_by_name(value()));
      } else if (arg == "--variant") {
        req.variant = value();
      } else if (arg == "--filter") {
        req.filter = value();
      } else if (arg == "--program") {
        program_path = value();
      } else if (arg == "--out") {
        out_path = value();
      } else if (arg == "--format") {
        format = value();
      } else if (arg == "--name") {
        name = value();
      } else if (arg == "--stats") {
        do_stats = true;
      } else if (arg == "--ping") {
        do_ping = true;
      } else if (arg == "--cancel-after") {
        cancel_after = cli::parse_positive_int(arg, value());
      } else if (arg == "--retries") {
        retries = cli::parse_positive_int(arg, value());
      } else {
        throw Error("unknown option: " + arg + " (see --help)");
      }
    }
    if (port == 0) throw Error("--port is required (see --help)");
    if (!program_path.empty()) req.program = read_file(program_path);

    if (do_ping) {
      serve::Client client(host, port);
      const auto t0 = std::chrono::steady_clock::now();
      client.ping();
      const double ms = std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - t0)
                            .count();
      std::cout << "pong (" << ms << " ms)\n";
      client.bye();
      return 0;
    }
    if (do_stats) {
      serve::Client client(host, port);
      std::cout << client.stats() << "\n";
      client.bye();
      return 0;
    }

    serve::SimRun run;
    for (i32 attempt = 0;; ++attempt) {
      serve::Client client(host, port);
      size_t streamed = 0;
      run = client.sim(req, [&](const serve::Response&) {
        ++streamed;
        return cancel_after == 0 ||
               streamed < static_cast<size_t>(cancel_after);
      });
      client.bye();
      if (run.ok || run.code == serve::ErrCode::kCanceled) break;
      if (!run.retriable || attempt >= retries) {
        std::cerr << "vuv_client: request failed: "
                  << serve::err_code_name(run.code) << ": " << run.error
                  << (run.retriable ? " (retriable; see --retries)" : "")
                  << "\n";
        return 1;
      }
      const int backoff_ms = 200 * (attempt + 1);
      std::cerr << "[vuv_client] " << serve::err_code_name(run.code)
                << "; retrying in " << backoff_ms << " ms ("
                << (retries - attempt) << " attempt(s) left)\n";
      std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
    }

    if (run.code == serve::ErrCode::kCanceled && !run.ok)
      std::cerr << "[vuv_client] canceled after " << run.outcomes.size()
                << " of " << run.acked_cells << " cells\n";
    else
      std::cerr << "[vuv_client] " << run.outcomes.size() << " cells\n";

    if (program_path.empty()) {
      // Matrix mode: the same report writers as vuv_sweep, fed with the
      // reconstructed outcomes — byte-identical to a local run.
      format = cli::pick_format(format, out_path);
      const std::unique_ptr<Report> report = make_report(format, name);
      cli::write_output(out_path, [&](std::ostream& os) {
        report->write(os, run.outcomes);
      });
    } else {
      // Program mode: cells have no registry app, so the sweep report
      // writers (keyed on cell.app) do not apply; print the differential
      // oracle's verdict per config instead.
      cli::write_output(out_path, [&](std::ostream& os) {
        for (const CellOutcome& o : run.outcomes)
          os << o.result.config << " "
             << (o.cell.perfect ? "perfect" : "realistic") << " "
             << (o.result.verified ? "ok" : "FAIL") << " cycles="
             << o.result.sim.cycles << "\n";
      });
    }

    int failures = 0;
    for (const CellOutcome& o : run.outcomes)
      if (!o.result.verified) {
        ++failures;
        std::cerr << "[vuv_client] VERIFICATION FAILED: " << o.result.app
                  << "/" << o.result.config << ": " << o.result.verify_error
                  << "\n";
      }
    return failures ? 1 : 0;
  } catch (const std::exception& e) {
    std::cerr << "vuv_client: " << e.what() << "\n";
    return 2;
  }
}
