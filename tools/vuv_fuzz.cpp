// vuv_fuzz — constrained-random differential fuzzing of the timing
// simulator against the architectural reference interpreter.
//
//   vuv_fuzz --seeds 0:500                    # all variants, both memory modes
//   vuv_fuzz --seeds 0:50 --variant vector    # one ISA variant
//   vuv_fuzz --replay counterex.vuvgen        # re-check a saved program
//   vuv_fuzz --dump-dir corpus --seeds 0:20   # write programs as corpus files
//   vuv_fuzz --self-test                      # prove the oracle catches and
//                                             # shrinks injected semantics bugs
//
// Each seed deterministically generates one program per selected variant;
// the program runs through the interpreter and through compile+simulate on
// a per-seed Table-2 configuration in both memory modes, and every
// divergence (final memory, dynamic counters, timing invariants) is fatal:
// the failing program is shrunk to a minimal op sequence and written as a
// replayable .vuvgen counterexample file.
#include <fstream>
#include <iostream>
#include <sstream>

#include "cli.hpp"
#include "ref/diff.hpp"
#include "ref/gen.hpp"
#include "verify/irlint.hpp"

using namespace vuv;

namespace {

const cli::Usage kUsage{
    "vuv_fuzz",
    "Differential fuzzing: reference interpreter vs compile+simulate.",
    "",
    {
        {"--seeds A:B", "half-open seed range to fuzz (default 0:100)"},
        {"--variant V", "scalar, musimd, vector or all (default all)"},
        {"--atoms N", "random atoms per program (default 32)"},
        {"--mode M",
         "realistic, perfect or both memory modes (default both)"},
        {"--out PATH",
         "counterexample file path (default counterex_<variant>_<seed>.vuvgen)"},
        {"--no-shrink", "write the unshrunk counterexample"},
        {"--replay FILE",
         "replay a .vuvgen file through the full check matrix"},
        {"--dump-dir DIR",
         "also write every generated program to DIR (corpus curation)"},
        {"--lint",
         "also run the static verifier: IR-lint every generated\n"
         "program (error diagnostics are fatal) and compile with\n"
         "strict_verify so schedule-checker findings shrink like\n"
         "any other divergence"},
        {"--self-test",
         "inject known interpreter faults; exit 0 iff both are\n"
         "caught and shrunk to <= 10 body ops"},
    },
    {
        "vuv_fuzz --seeds 0:500                    # all variants, both memory modes",
        "vuv_fuzz --seeds 0:50 --variant vector    # one ISA variant",
        "vuv_fuzz --replay counterex.vuvgen        # re-check a saved program",
        "vuv_fuzz --dump-dir corpus --seeds 0:20   # write programs as corpus files",
    }};

/// The per-seed machine rotation: every Table-2 configuration of the
/// variant's ISA level gets coverage across a seed range.
const std::vector<MachineConfig>& configs_for(Variant v) {
  static const std::vector<MachineConfig> scalar = {
      MachineConfig::vliw(2), MachineConfig::vliw(4), MachineConfig::vliw(8)};
  static const std::vector<MachineConfig> musimd = {
      MachineConfig::musimd(2), MachineConfig::musimd(4),
      MachineConfig::musimd(8)};
  static const std::vector<MachineConfig> vector = {
      MachineConfig::vector1(2), MachineConfig::vector1(4),
      MachineConfig::vector2(2), MachineConfig::vector2(4)};
  switch (v) {
    case Variant::kScalar: return scalar;
    case Variant::kMusimd: return musimd;
    default: return vector;
  }
}

struct CellResult {
  DiffReport rep;
  std::string cfg_name;
  bool perfect = false;
};

/// Run one GenProgram through interpreter-vs-simulator on `cfg` in the
/// selected memory modes; returns the first failing cell (or ok). With
/// `strict`, compile() additionally re-verifies its own schedule, so a
/// scheduler bug surfaces as a kSimFault divergence.
CellResult check_program(const GenProgram& p, MachineConfig cfg,
                         const std::string& mode, InterpFault fault,
                         bool strict = false) {
  const GenBuilt built = materialize(p);
  CellResult cell;
  InterpOptions iopts;
  iopts.fault = fault;
  CompileOptions copts;
  copts.strict_verify = strict;
  copts.mem_extent = built.ws->used();
  copts.unit = "fuzz";
  for (const bool perfect : {false, true}) {
    if (perfect && mode == "realistic") continue;
    if (!perfect && mode == "perfect") continue;
    cfg.mem.perfect = perfect;
    cell.rep = diff_program(built.program, built.ws->mem(), built.ws->used(),
                            cfg, iopts, copts);
    cell.cfg_name = cfg.name;
    cell.perfect = perfect;
    if (!cell.rep.ok) return cell;
  }
  return cell;
}

/// IR-lint a generated program; returns the first error-severity diagnostic
/// as a string, or empty when clean. The generator is supposed to emit
/// well-formed, fully-initialized IR, so any error here is a generator (or
/// lint) bug worth a counterexample.
std::string lint_gen(const GenProgram& p) {
  const GenBuilt built = materialize(p);
  lint::LintOptions lopts;
  lopts.unit = "fuzz";
  lopts.mem_extent = built.ws->used();
  const lint::DiagReport rep = lint_program(built.program, lopts);
  if (const lint::Diagnostic* e = rep.first_error()) return lint::to_string(*e);
  return "";
}

std::string cell_key(const CellResult& c) {
  return c.cfg_name + (c.perfect ? "|perfect" : "|realistic");
}

void write_counterexample(const GenProgram& p, const std::string& path,
                          const CellResult& cell) {
  std::ofstream f(path);
  if (!f) throw Error("cannot write " + path);
  f << "# " << cell_key(cell) << ": " << cell.rep.error << "\n";
  f << to_text(p);
  std::cerr << "[vuv_fuzz] counterexample written to " << path << " ("
            << p.body_ops() << " body ops)\n";
}

GenProgram load_file(const std::string& path) {
  std::ifstream f(path);
  if (!f) throw Error("cannot read " + path);
  std::ostringstream text;
  text << f.rdbuf();
  const GenProgram p = from_text(text.str());
  if (p.atoms.empty()) throw Error("empty program in " + path);
  return p;
}

/// Shrink `p` against the failing cell, preserving the failure kind.
GenProgram shrink_against(const GenProgram& p, const MachineConfig& cfg,
                          const CellResult& orig, InterpFault fault,
                          bool strict = false) {
  const std::string mode = orig.perfect ? "perfect" : "realistic";
  const DiffKind kind = orig.rep.kind;
  return shrink(p, [&cfg, &mode, kind, fault, strict](const GenProgram& cand) {
    const CellResult c = check_program(cand, cfg, mode, fault, strict);
    return !c.rep.ok && c.rep.kind == kind;
  });
}

struct FuzzStats {
  i64 programs = 0;
  i64 cells = 0;
};

/// Fuzz one variant over a seed range. Returns false (after writing the
/// shrunk counterexample) on the first divergence.
bool fuzz_variant(Variant v, i64 seed_lo, i64 seed_hi, i32 atoms,
                  const std::string& mode, const std::string& out_path,
                  bool do_shrink, const std::string& dump_dir,
                  InterpFault fault, bool lint, FuzzStats& stats) {
  const std::vector<MachineConfig>& cfgs = configs_for(v);
  for (i64 seed = seed_lo; seed < seed_hi; ++seed) {
    GenOptions gopts;
    gopts.variant = v;
    gopts.seed = static_cast<u64>(seed);
    gopts.atoms = atoms;
    const GenProgram p = generate(gopts);
    if (!dump_dir.empty()) {
      std::ostringstream name;
      name << dump_dir << "/gen_" << variant_name(v) << "_seed"
           << seed << ".vuvgen";
      std::ofstream f(name.str());
      if (!f) throw Error("cannot write " + name.str());
      f << to_text(p);
    }
    if (lint) {
      const std::string err = lint_gen(p);
      if (!err.empty()) {
        std::cerr << "[vuv_fuzz] LINT ERROR at seed " << seed << " variant "
                  << variant_name(v) << ":\n  " << err << "\n";
        std::string path = out_path;
        if (path.empty()) {
          std::ostringstream name;
          name << "lintfail_" << variant_name(v) << "_seed" << seed
               << ".vuvgen";
          path = name.str();
        }
        std::ofstream f(path);
        if (!f) throw Error("cannot write " + path);
        f << "# lint: " << err << "\n" << to_text(p);
        std::cerr << "[vuv_fuzz] counterexample written to " << path << "\n";
        return false;
      }
    }
    const MachineConfig& cfg =
        cfgs[static_cast<size_t>(seed) % cfgs.size()];
    const CellResult cell = check_program(p, cfg, mode, fault, lint);
    ++stats.programs;
    stats.cells += mode == "both" ? 2 : 1;
    if (cell.rep.ok) continue;

    std::cerr << "[vuv_fuzz] DIVERGENCE at seed " << seed << " variant "
              << variant_name(v) << " cell " << cell_key(cell) << ":\n  "
              << cell.rep.error << "\n";
    GenProgram minimal = p;
    if (do_shrink) {
      minimal = shrink_against(p, cfg, cell, fault, lint);
      std::cerr << "[vuv_fuzz] shrunk " << p.body_ops() << " -> "
                << minimal.body_ops() << " body ops\n";
    }
    std::string path = out_path;
    if (path.empty()) {
      std::ostringstream name;
      name << "counterex_" << variant_name(v) << "_seed" << seed << ".vuvgen";
      path = name.str();
    }
    write_counterexample(minimal, path, cell);
    return false;
  }
  return true;
}

/// Prove the oracle end to end: with a deliberately mis-implemented opcode
/// on the interpreter side, fuzzing must find a divergence quickly and
/// shrink it to a tiny program. Exercises the exact machinery that would
/// catch an equivalent bug injected into src/sim/exec.cpp (the diff is
/// symmetric in which side is wrong).
bool self_test(i32 atoms) {
  struct Case {
    InterpFault fault;
    Variant variant;
    const char* name;
  };
  const Case cases[] = {
      {InterpFault::kPaddusbWraps, Variant::kMusimd, "paddusb-wraps/musimd"},
      {InterpFault::kPaddusbWraps, Variant::kVector, "paddusb-wraps/vector"},
      {InterpFault::kSrajIgnoresImm, Variant::kScalar, "srai-ignores-imm/scalar"},
  };
  for (const Case& c : cases) {
    const std::vector<MachineConfig>& cfgs = configs_for(c.variant);
    bool caught = false;
    for (i64 seed = 0; seed < 200 && !caught; ++seed) {
      GenOptions gopts;
      gopts.variant = c.variant;
      gopts.seed = static_cast<u64>(seed);
      gopts.atoms = atoms;
      const GenProgram p = generate(gopts);
      const MachineConfig& cfg =
          cfgs[static_cast<size_t>(seed) % cfgs.size()];
      const CellResult cell = check_program(p, cfg, "both", c.fault);
      if (cell.rep.ok) continue;
      caught = true;
      const GenProgram minimal = shrink_against(p, cfg, cell, c.fault);
      std::cerr << "[vuv_fuzz] self-test " << c.name << ": caught at seed "
                << seed << ", shrunk " << p.body_ops() << " -> "
                << minimal.body_ops() << " body ops\n";
      if (minimal.body_ops() > 10) {
        std::cerr << "[vuv_fuzz] self-test FAILED: counterexample not "
                     "minimal (> 10 ops)\n"
                  << to_text(minimal);
        return false;
      }
    }
    if (!caught) {
      std::cerr << "[vuv_fuzz] self-test FAILED: fault " << c.name
                << " not detected in 200 seeds\n";
      return false;
    }
  }
  std::cerr << "[vuv_fuzz] self-test ok: injected semantics bugs are caught "
               "and shrunk\n";
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  i64 seed_lo = 0, seed_hi = 100;
  std::string variant = "all", mode = "both", out_path, replay, dump_dir;
  i32 atoms = 32;
  bool do_shrink = true, run_self_test = false, lint = false;

  try {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      auto value = [&]() -> std::string {
        if (i + 1 >= argc) throw Error("missing value for " + arg);
        return argv[++i];
      };
      if (arg == "-h" || arg == "--help") {
        std::cout << kUsage.text();
        return 0;
      } else if (arg == "--seeds") {
        const std::string v = value();
        const size_t colon = v.find(':');
        if (colon == std::string::npos)
          throw Error("--seeds expects A:B, got '" + v + "'");
        seed_lo = cli::parse_nonneg_i64(arg, v.substr(0, colon));
        seed_hi = cli::parse_nonneg_i64(arg, v.substr(colon + 1));
        if (seed_hi <= seed_lo)
          throw Error("--seeds expects 0 <= A < B");
      } else if (arg == "--variant") {
        variant = value();
        if (variant != "scalar" && variant != "musimd" &&
            variant != "vector" && variant != "all")
          throw Error("--variant expects scalar|musimd|vector|all");
      } else if (arg == "--atoms") {
        atoms = cli::parse_positive_int(arg, value());
      } else if (arg == "--mode") {
        mode = value();
        if (mode != "realistic" && mode != "perfect" && mode != "both")
          throw Error("--mode expects realistic|perfect|both");
      } else if (arg == "--out") {
        out_path = value();
      } else if (arg == "--no-shrink") {
        do_shrink = false;
      } else if (arg == "--replay") {
        replay = value();
      } else if (arg == "--dump-dir") {
        dump_dir = value();
      } else if (arg == "--self-test") {
        run_self_test = true;
      } else if (arg == "--lint") {
        lint = true;
      } else {
        throw Error("unknown option: " + arg + " (see --help)");
      }
    }

    if (run_self_test) return self_test(atoms) ? 0 : 1;

    if (!replay.empty()) {
      const GenProgram p = load_file(replay);
      int failures = 0;
      if (lint) {
        const std::string err = lint_gen(p);
        if (!err.empty()) {
          ++failures;
          std::cerr << "[vuv_fuzz] replay LINT ERROR: " << err << "\n";
        }
      }
      for (const MachineConfig& cfg : configs_for(p.variant)) {
        const CellResult cell =
            check_program(p, cfg, mode, InterpFault::kNone, lint);
        if (!cell.rep.ok) {
          ++failures;
          std::cerr << "[vuv_fuzz] replay FAILED on " << cell_key(cell)
                    << ": " << cell.rep.error << "\n";
        }
      }
      std::cerr << "[vuv_fuzz] replay " << replay << ": "
                << (failures ? "FAILED" : "ok") << "\n";
      return failures ? 1 : 0;
    }

    std::vector<Variant> variants;
    if (variant == "all")
      variants = {Variant::kScalar, Variant::kMusimd, Variant::kVector};
    else if (variant == "scalar")
      variants = {Variant::kScalar};
    else if (variant == "musimd")
      variants = {Variant::kMusimd};
    else
      variants = {Variant::kVector};

    FuzzStats stats;
    for (Variant v : variants)
      if (!fuzz_variant(v, seed_lo, seed_hi, atoms, mode, out_path, do_shrink,
                        dump_dir, InterpFault::kNone, lint, stats))
        return 1;
    std::cerr << "[vuv_fuzz] ok: " << stats.programs << " programs, "
              << stats.cells << " cells, no divergence\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "vuv_fuzz: " << e.what() << "\n";
    return 2;
  }
}
