// vuv_lint — static verification driver over the app registry and the
// fuzz corpus: full IR lint (src/verify/irlint) plus the independent
// post-schedule and image checkers (src/verify/schedcheck) on every
// Table-2 configuration matching each program's ISA variant.
//
//   vuv_lint                                  # all apps x all variants
//   vuv_lint --apps jpeg_enc --variants vector
//   vuv_lint --corpus tests/corpus            # also lint .vuvgen files
//   vuv_lint --json lint.json                 # machine-readable findings
//   vuv_lint --no-sched                       # IR lint only (no compiles)
//
// Output is deterministic and byte-stable: diagnostics are sorted, JSON
// key order is fixed, and nothing host-dependent is emitted on stdout.
// Exit status: 0 clean (warnings allowed), 1 if any error-severity
// diagnostic was produced, 2 on usage or internal failure.
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>

#include "cli.hpp"
#include "ref/gen.hpp"
#include "sim/image.hpp"
#include "verify/irlint.hpp"
#include "verify/schedcheck.hpp"

using namespace vuv;

namespace {

const cli::Usage kUsage{
    "vuv_lint",
    "Static verification: IR lint + independent schedule/image checks.",
    "",
    {
        {"--apps a,b,...", "apps to lint (default: every registered app)"},
        {"--variants v,...", "scalar, musimd, vector (default: all three)"},
        {"--corpus DIR",
         "also lint every .vuvgen file in DIR (sorted order)"},
        {"--json PATH",
         "write the sorted diagnostics as a JSON array to PATH"},
        {"--no-sched",
         "IR lint only: skip compile + schedule/image checks"},
        {"--max-print N",
         "print at most N warning lines (default 40; errors\n"
         "always print; the JSON report is never truncated)"},
        {"--list",
         "print the lintable apps, variants and configs; exit"},
    },
    {
        "vuv_lint                                  # all apps x all variants",
        "vuv_lint --apps jpeg_enc --variants vector",
        "vuv_lint --corpus tests/corpus            # also lint .vuvgen files",
        "vuv_lint --json lint.json                 # machine-readable findings",
    }};

/// Table-2 configurations whose ISA level runs this code variant (paper
/// methodology: each architecture runs the best code its ISA supports).
std::vector<MachineConfig> configs_for(Variant v) {
  std::vector<MachineConfig> out;
  for (const MachineConfig& c : MachineConfig::all_table2())
    if (variant_for(c.isa) == v) out.push_back(c);
  return out;
}

Variant variant_by_name(const std::string& n) {
  if (n == "scalar") return Variant::kScalar;
  if (n == "musimd") return Variant::kMusimd;
  if (n == "vector") return Variant::kVector;
  throw Error("unknown variant '" + n + "' (scalar|musimd|vector)");
}

void print_list() {
  std::cout << "apps:";
  for (App a : all_apps()) std::cout << ' ' << app_name(a);
  std::cout << "\nvariants: scalar musimd vector\nconfigs:";
  for (const MachineConfig& c : MachineConfig::all_table2())
    std::cout << ' ' << c.name << '(' << variant_name(variant_for(c.isa))
              << ')';
  std::cout << "\n";
}

struct LintRun {
  lint::DiagReport report;
  i64 units = 0;     // programs linted
  i64 schedules = 0; // (program, config) schedule checks
};

/// Lint one program end to end: IR rules, then (unless disabled, and only
/// when the IR is clean enough to compile) an independent re-check of the
/// scheduler and image lowering on every matching Table-2 configuration.
void lint_one(const Program& prog, u32 mem_extent, const std::string& unit,
              const std::vector<MachineConfig>& cfgs, bool no_sched,
              LintRun& run) {
  lint::LintOptions lopts;
  lopts.unit = unit;
  lopts.mem_extent = mem_extent;
  const lint::DiagReport ir = lint_program(prog, lopts);
  const bool ir_errors = ir.errors() > 0;
  run.report.merge(ir);
  ++run.units;
  if (no_sched || ir_errors) return;

  for (const MachineConfig& cfg : cfgs) {
    const std::string cunit = unit + "|" + cfg.name;
    try {
      const Program source = prog;  // compile() consumes its argument
      const ScheduledProgram sp = compile(Program(prog), cfg);
      run.report.merge(lint::check_schedule(sp, &source, {cunit}));
      const ExecImage image = lower_image(sp, cfg);
      run.report.merge(lint::check_image(sp, image, {cunit}));
    } catch (const Error& e) {
      // The pipeline itself rejected the program: surface it as a finding
      // rather than aborting the whole run.
      run.report.add(lint::Severity::kError, "compile-fault", cunit, -1, -1,
                     e.what());
    }
    ++run.schedules;
  }
}

void lint_corpus(const std::string& dir, bool no_sched, LintRun& run) {
  namespace fs = std::filesystem;
  if (!fs::is_directory(dir)) throw Error("--corpus: not a directory: " + dir);
  std::vector<std::string> files;
  for (const auto& ent : fs::directory_iterator(dir))
    if (ent.is_regular_file() && ent.path().extension() == ".vuvgen")
      files.push_back(ent.path().string());
  std::sort(files.begin(), files.end());
  if (files.empty()) throw Error("--corpus: no .vuvgen files in " + dir);

  for (const std::string& path : files) {
    std::ifstream f(path);
    if (!f) throw Error("cannot read " + path);
    std::ostringstream text;
    text << f.rdbuf();
    const std::string unit = fs::path(path).filename().string();
    try {
      const GenProgram p = from_text(text.str());
      const GenBuilt built = materialize(p);
      lint_one(built.program, built.ws->used(), unit,
               configs_for(p.variant), no_sched, run);
    } catch (const Error& e) {
      run.report.add(lint::Severity::kError, "corpus-parse", unit, -1, -1,
                     e.what());
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<App> apps = all_apps();
  std::vector<Variant> variants = {Variant::kScalar, Variant::kMusimd,
                                   Variant::kVector};
  std::string corpus_dir, json_path;
  bool no_sched = false;
  i32 max_print = 40;

  try {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      auto value = [&]() -> std::string {
        if (i + 1 >= argc) throw Error("missing value for " + arg);
        return argv[++i];
      };
      if (arg == "-h" || arg == "--help") {
        std::cout << kUsage.text();
        return 0;
      } else if (arg == "--apps") {
        apps.clear();
        for (const std::string& n : cli::split_csv(value()))
          apps.push_back(app_by_name(n));
      } else if (arg == "--variants") {
        variants.clear();
        for (const std::string& n : cli::split_csv(value()))
          variants.push_back(variant_by_name(n));
      } else if (arg == "--corpus") {
        corpus_dir = value();
      } else if (arg == "--json") {
        json_path = value();
      } else if (arg == "--no-sched") {
        no_sched = true;
      } else if (arg == "--max-print") {
        max_print = cli::parse_positive_int(arg, value());
      } else if (arg == "--list") {
        print_list();
        return 0;
      } else {
        throw Error("unknown option: " + arg + " (see --help)");
      }
    }

    LintRun run;
    for (App app : apps)
      for (Variant v : variants) {
        const BuiltApp built = build_app(app, v);
        const std::string unit =
            std::string(app_name(app)) + "|" + variant_name(v);
        lint_one(built.program, built.ws->used(), unit, configs_for(v),
                 no_sched, run);
      }
    if (!corpus_dir.empty()) lint_corpus(corpus_dir, no_sched, run);

    run.report.sort();
    const std::vector<lint::Diagnostic>& diags = run.report.diags();
    i32 printed_warnings = 0;
    for (const lint::Diagnostic& d : diags) {
      if (d.severity != lint::Severity::kError) {
        if (printed_warnings >= max_print) continue;
        ++printed_warnings;
      }
      std::cout << lint::to_string(d) << "\n";
    }
    const i64 suppressed =
        run.report.warnings() + run.report.count(lint::Severity::kNote) -
        printed_warnings;
    if (suppressed > 0)
      std::cout << "... " << suppressed
                << " more warning(s) suppressed (--max-print)\n";

    if (!json_path.empty())
      cli::write_output(json_path,
                        [&](std::ostream& os) { os << lint::to_json(diags); });

    std::cerr << "[vuv_lint] " << run.units << " program(s), "
              << run.schedules << " schedule check(s): "
              << run.report.summary() << "\n";
    return run.report.errors() > 0 ? 1 : 0;
  } catch (const std::exception& e) {
    std::cerr << "vuv_lint: " << e.what() << "\n";
    return 2;
  }
}
