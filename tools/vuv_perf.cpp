// vuv_perf — measure host-side simulator throughput over a sweep matrix
// and emit PERF_host.json (see src/perf/host_perf.hpp).
//
//   vuv_perf                                   # full 60-cell matrix
//   vuv_perf --jobs 4 --out PERF_host.json
//   vuv_perf --baseline perf/baseline.json --max-regress 2.0
//
// With --baseline, exits non-zero when the measured whole-matrix wall time
// exceeds baseline * max-regress — the CI perf gate. The threshold is
// deliberately generous: shared CI runners are noisy, and the gate exists
// to catch order-of-magnitude hot-path regressions, not percent drift.
#include <fstream>
#include <iostream>

#include "cli.hpp"
#include "perf/host_perf.hpp"
#include "sim/kernels/kernels.hpp"

using namespace vuv;

namespace {

const cli::Usage kUsage{
    "vuv_perf",
    "Measure host simulator throughput (wall time, simulated cycles/second)\n"
    "over an (app x config) sweep matrix and write PERF_host.json.",
    "",
    {
        {"--apps a,b,...",
         "apps to run (default: the six Table-1 codecs; the\n"
         "committed baseline is keyed to that matrix, so the\n"
         "opt-in imgpipe app never skews the gate)"},
        {"--configs a,b,...", "Table-2 configuration names (default: all ten)"},
        {"--jobs N", "worker threads (default: hardware concurrency)"},
        {"--simd LEVEL",
         "host kernel level: scalar|avx2|neon|auto (default: the\n"
         "VUV_SIMD environment variable, itself defaulting to\n"
         "auto = best available). The level used is recorded as\n"
         "\"simd_dispatch\" in the JSON."},
        {"--perfect", "measure the perfect-memory matrix instead"},
        {"--out PATH",
         "output JSON path (default: PERF_host.json; - = stdout)"},
        {"--name NAME", "bench name embedded in the JSON (default: host_perf)"},
        {"--metrics PATH",
         "also write the runner's host-side metrics snapshot\n"
         "(thread pool, compile cache) as JSON to PATH"},
        {"--baseline PATH",
         "compare against a committed PERF_host.json baseline"},
        {"--max-regress X",
         "fail if wall_seconds > baseline * X (default 2.0)"},
    },
    {
        "vuv_perf                                   # full 60-cell matrix",
        "vuv_perf --jobs 4 --out PERF_host.json",
        "vuv_perf --baseline perf/baseline.json --max-regress 2.0",
    }};

}  // namespace

int main(int argc, char** argv) {
  std::vector<App> apps = table1_apps();
  std::vector<MachineConfig> cfgs = MachineConfig::all_table2();
  RunnerOptions opts;
  bool perfect = false;
  std::string out_path = "PERF_host.json", name = "host_perf", baseline;
  std::string metrics_path;
  double max_regress = 2.0;

  try {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      auto value = [&]() -> std::string {
        if (i + 1 >= argc) throw Error("missing value for " + arg);
        return argv[++i];
      };
      if (arg == "-h" || arg == "--help") {
        std::cout << kUsage.text();
        return 0;
      } else if (arg == "--apps") {
        apps.clear();
        for (const std::string& n : cli::split_csv(value()))
          apps.push_back(app_by_name(n));
      } else if (arg == "--configs") {
        cfgs.clear();
        for (const std::string& n : cli::split_csv(value()))
          cfgs.push_back(MachineConfig::table2_by_name(n));
      } else if (arg == "--jobs") {
        opts.jobs = cli::parse_positive_int(arg, value());
      } else if (arg == "--simd") {
        simd::set_level(simd::level_by_name(value()));
      } else if (arg == "--perfect") {
        perfect = true;
      } else if (arg == "--out") {
        out_path = value();
      } else if (arg == "--name") {
        name = value();
      } else if (arg == "--metrics") {
        metrics_path = value();
      } else if (arg == "--baseline") {
        baseline = value();
      } else if (arg == "--max-regress") {
        max_regress = cli::parse_positive_double(arg, value());
      } else {
        throw Error("unknown option: " + arg + " (see --help)");
      }
    }

    const SweepSpec spec = SweepSpec::matrix(apps, cfgs, {perfect});
    if (spec.empty()) throw Error("the sweep spec selected no cells");

    std::cerr << "[vuv_perf] measuring " << spec.size() << " cells\n";
    std::string metrics_json;
    const HostPerf perf = measure_host_perf(
        spec, opts, metrics_path.empty() ? nullptr : &metrics_json);

    cli::write_output(out_path, [&](std::ostream& os) {
      write_host_perf_json(os, perf, name);
    });
    if (!metrics_path.empty())
      cli::write_output(metrics_path,
                        [&](std::ostream& os) { os << metrics_json; });
    std::cerr << "[vuv_perf] " << perf.cells << " cells on " << perf.jobs
              << " worker(s), " << perf.simd_dispatch << " kernels: "
              << perf.wall_seconds << "s wall, " << perf.simulated_cycles
              << " simulated cycles (" << perf.cycles_per_second / 1e6
              << " Mcycles/s)\n";
    for (const ClassPerf& c : perf.workload_class)
      std::cerr << "[vuv_perf]   " << c.name << ": " << c.cells
                << " cell(s), " << c.wall_seconds << "s simulate, "
                << c.cycles_per_second / 1e6 << " Mcycles/s\n";

    if (!baseline.empty()) {
      std::ifstream bf(baseline);
      if (!bf) throw Error("cannot read baseline " + baseline);
      const double base = read_baseline_wall_seconds(bf);
      const double ratio = base > 0 ? perf.wall_seconds / base : 0.0;
      std::cerr << "[vuv_perf] baseline " << base << "s, measured "
                << perf.wall_seconds << "s (" << ratio << "x, limit "
                << max_regress << "x)\n";
      if (ratio > max_regress) {
        std::cerr << "[vuv_perf] PERF REGRESSION: wall time exceeds "
                  << max_regress << "x the committed baseline\n";
        return 1;
      }
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "vuv_perf: " << e.what() << "\n";
    return 2;
  }
}
