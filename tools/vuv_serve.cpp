// vuv_serve — simulation-as-a-service daemon. Accepts newline-delimited
// JSON requests over local TCP (wire format: docs/PROTOCOL.md), schedules
// cells onto the shared parallel Runner (so identical compiles dedup
// across clients), streams per-cell results back in spec order, and sheds
// load with a retriable `overloaded` error when the admission queue is
// full.
//
//   vuv_serve                       # 127.0.0.1, ephemeral port, all cores
//   vuv_serve --port 7777 --jobs 4
//   vuv_serve --queue-limit 64 --idle-timeout 30000
//
// On startup the daemon prints exactly one line to stdout:
//
//   VUV_SERVE READY port=<port>
//
// Scripts (scripts/run_benches.sh --serve, the ctest soak driver) parse
// that line to discover the ephemeral port; everything else goes to
// stderr. SIGINT/SIGTERM drain in-flight requests and exit 0.
#include <csignal>
#include <iostream>

#include "cli.hpp"
#include "serve/server.hpp"

using namespace vuv;

namespace {

const cli::Usage kUsage{
    "vuv_serve",
    "Long-running simulation daemon: NDJSON requests over local TCP,\n"
    "batched onto the shared parallel runner (docs/PROTOCOL.md).",
    "On startup exactly one line is printed to stdout:\n"
    "\n"
    "  VUV_SERVE READY port=<port>\n"
    "\n"
    "so scripts can discover the bound (possibly ephemeral) port. All\n"
    "logging goes to stderr. SIGINT/SIGTERM stop accepting, drain, exit 0.",
    {
        {"--host ADDR", "address to bind (default 127.0.0.1; loopback only\n"
                        "unless you know what you are doing)"},
        {"--port N", "TCP port to listen on (default 0 = ephemeral)"},
        {"--jobs N", "simulation worker threads (default: hardware\n"
                     "concurrency)"},
        {"--queue-limit N",
         "admission-queue bound in CELLS across all clients;\n"
         "a sim request that would exceed it is shed whole with\n"
         "a retriable `overloaded` error (default 256)"},
        {"--idle-timeout MS",
         "disconnect clients idle (no frames, no queued work)\n"
         "for MS milliseconds; 0 = never (default 0)"},
        {"--inflight N",
         "fairness window: cells dispatched to the pool but not\n"
         "yet streamed, across all clients; small = snappier\n"
         "interactive requests next to big batches (default:\n"
         "2x the worker count)"},
        {"--cache-dir PATH",
         "persistent on-disk result cache: completed cells are\n"
         "stored under PATH (created if missing) and served on\n"
         "restart without compiling or simulating, byte-identical\n"
         "to a fresh run; safe to share between daemons"},
        {"--cache-entries N",
         "LRU bound on cached entries in --cache-dir\n"
         "(default 65536)"},
        {"--strict",
         "run the static verifier inside every compile (same\n"
         "gate as vuv_sweep --strict)"},
        {"--metrics PATH",
         "on shutdown, write the serve+runner metrics snapshot\n"
         "as JSON to PATH (- = stderr)"},
    },
    {
        "vuv_serve                       # ephemeral port, all cores",
        "vuv_serve --port 7777 --jobs 4",
        "vuv_serve --queue-limit 64 --idle-timeout 30000",
    }};

serve::Server* g_server = nullptr;

void on_signal(int) {
  // async-signal-safe: request_stop only flips an atomic and closes the
  // listening socket's shutdown pipe-free poll loop via the stopping flag.
  if (g_server) g_server->request_stop();
}

}  // namespace

int main(int argc, char** argv) {
  serve::ServerOptions opts;
  std::string metrics_path;

  try {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      auto value = [&]() -> std::string {
        if (i + 1 >= argc) throw Error("missing value for " + arg);
        return argv[++i];
      };
      if (arg == "-h" || arg == "--help") {
        std::cout << kUsage.text();
        return 0;
      } else if (arg == "--host") {
        opts.host = value();
      } else if (arg == "--port") {
        // port 0 (ephemeral) is valid, so parse_positive_int is too strict
        const std::string v = value();
        if (v == "0") {
          opts.port = 0;
        } else {
          opts.port = cli::parse_positive_int(arg, v);
          if (opts.port > 65535) throw Error("--port must be <= 65535");
        }
      } else if (arg == "--jobs") {
        opts.jobs = cli::parse_positive_int(arg, value());
      } else if (arg == "--queue-limit") {
        opts.max_queued_cells = cli::parse_positive_int(arg, value());
      } else if (arg == "--idle-timeout") {
        opts.idle_timeout_ms = cli::parse_positive_int(arg, value());
      } else if (arg == "--inflight") {
        opts.max_inflight_cells = cli::parse_positive_int(arg, value());
      } else if (arg == "--cache-dir") {
        opts.cache_dir = value();
      } else if (arg == "--cache-entries") {
        opts.cache_entries = cli::parse_positive_int(arg, value());
      } else if (arg == "--strict") {
        opts.strict = true;
      } else if (arg == "--metrics") {
        metrics_path = value();
      } else {
        throw Error("unknown option: " + arg + " (see --help)");
      }
    }

    serve::Server server(opts);
    server.start();
    g_server = &server;
    std::signal(SIGINT, on_signal);
    std::signal(SIGTERM, on_signal);

    // The readiness line is the tool's only stdout output; scripts depend
    // on its exact shape.
    std::cout << "VUV_SERVE READY port=" << server.port() << "\n"
              << std::flush;
    std::cerr << "[vuv_serve] listening on " << opts.host << ":"
              << server.port() << " (" << server.runner().jobs()
              << " worker(s), queue limit " << opts.max_queued_cells
              << " cells)\n";
    if (!opts.cache_dir.empty())
      std::cerr << "[vuv_serve] result cache: " << opts.cache_dir << "\n";

    server.wait();  // until request_stop() via signal or fatal accept error
    server.stop();
    g_server = nullptr;

    if (!metrics_path.empty()) {
      // stdout is reserved for the READY line, so "-" means stderr here.
      if (metrics_path == "-") {
        server.metrics().write_json(std::cerr);
        std::cerr << "\n";
      } else {
        cli::write_output(metrics_path, [&](std::ostream& os) {
          server.metrics().write_json(os);
        });
      }
    }
    std::cerr << "[vuv_serve] shut down cleanly\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "vuv_serve: " << e.what() << "\n";
    return 2;
  }
}
