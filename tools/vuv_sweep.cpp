// vuv_sweep — run a matrix of (app x config x memory-mode) simulations on
// the parallel sweep runner and emit a unified report.
//
//   vuv_sweep                                # full 6-app x Table-2 matrix
//   vuv_sweep --apps jpeg_enc,gsm_dec --configs Vector2-2w,VLIW-8w
//   vuv_sweep --jobs 8 --out sweep.csv       # format from the extension
//   vuv_sweep --perfect --filter mpeg2       # perfect memory, key filter
//
// Reports are byte-identical for any --jobs value: cells are emitted in
// spec order and contain no host timing. Wall time and compile-cache
// statistics go to stderr only.
#include <chrono>
#include <fstream>
#include <iostream>

#include "cli.hpp"
#include "common/table.hpp"
#include "runner/report.hpp"
#include "runner/runner.hpp"
#include "serve/cache.hpp"

using namespace vuv;

namespace {

const cli::Usage kUsage{
    "vuv_sweep",
    "Run (app x config x memory-mode) sweeps on the parallel runner.",
    "",
    {
        {"--apps a,b,...",
         "apps to run (default: the six Table-1 codecs)\n"
         "names: jpeg_enc jpeg_dec mpeg2_enc mpeg2_dec gsm_enc\n"
         "gsm_dec imgpipe — imgpipe is opt-in so the default\n"
         "60-cell matrix (and the perf baseline keyed to it)\n"
         "stays stable"},
        {"--configs a,b,...",
         "Table-2 configuration names (default: all ten)\n"
         "e.g. VLIW-2w uSIMD-4w Vector1-2w Vector2-4w"},
        {"--jobs N", "worker threads (default: hardware concurrency)"},
        {"--cache-dir PATH",
         "persistent on-disk result cache: cells already cached\n"
         "under PATH skip compile and simulate and report byte-\n"
         "identically; fresh cells are stored for later runs\n"
         "(shared with vuv_serve --cache-dir)"},
        {"--cache-entries N",
         "LRU bound on cached entries in --cache-dir\n"
         "(default 65536)"},
        {"--list", "print the available apps and configurations and exit"},
        {"--perfect",
         "simulate with perfect memory (paper 5.1) instead of\n"
         "the realistic hierarchy"},
        {"--filter SUBSTR",
         "keep only cells whose key contains SUBSTR\n"
         "(key: <app>|<variant>|<config>|<p|r>)"},
        {"--out PATH",
         "write the report to PATH; format from the extension\n"
         "(.json = BENCH-style json, .csv = csv, else table)"},
        {"--format F", "override the report format: json, csv or table"},
        {"--name NAME", "bench name embedded in json reports (default: sweep)"},
        {"--metrics PATH",
         "also write the runner's host-side metrics snapshot\n"
         "(thread pool, compile cache, aggregated cache hits)\n"
         "as JSON to PATH (- = stdout)"},
        {"--strict",
         "run the static verifier inside every compile: full IR\n"
         "lint plus independent schedule/image re-checks; any\n"
         "error-severity finding fails the cell's compile"},
    },
    {
        "vuv_sweep                                # full 6-app x Table-2 matrix",
        "vuv_sweep --apps jpeg_enc,gsm_dec --configs Vector2-2w,VLIW-8w",
        "vuv_sweep --jobs 8 --out sweep.csv       # format from the extension",
        "vuv_sweep --perfect --filter mpeg2       # perfect memory, key filter",
    }};

void print_list() {
  std::cout << "apps:";
  for (App a : table1_apps()) std::cout << ' ' << app_name(a);
  std::cout << "\nopt-in apps:";
  for (App a : all_apps()) {
    bool in_default = false;
    for (App t : table1_apps()) in_default |= t == a;
    if (!in_default) std::cout << ' ' << app_name(a);
  }
  std::cout << "\nconfigs:";
  for (const MachineConfig& c : MachineConfig::all_table2())
    std::cout << ' ' << c.name;
  std::cout << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<App> apps = table1_apps();
  std::vector<MachineConfig> cfgs = MachineConfig::all_table2();
  RunnerOptions opts;
  bool perfect = false, strict = false;
  std::string filter, out_path, format, name = "sweep", metrics_path;

  try {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      auto value = [&]() -> std::string {
        if (i + 1 >= argc) throw Error("missing value for " + arg);
        return argv[++i];
      };
      if (arg == "-h" || arg == "--help") {
        std::cout << kUsage.text();
        return 0;
      } else if (arg == "--apps") {
        apps.clear();
        for (const std::string& n : cli::split_csv(value()))
          apps.push_back(app_by_name(n));
      } else if (arg == "--configs") {
        cfgs.clear();
        for (const std::string& n : cli::split_csv(value()))
          cfgs.push_back(MachineConfig::table2_by_name(n));
      } else if (arg == "--jobs") {
        opts.jobs = cli::parse_positive_int(arg, value());
      } else if (arg == "--cache-dir") {
        opts.cache_dir = value();
      } else if (arg == "--cache-entries") {
        opts.cache_entries = cli::parse_positive_int(arg, value());
      } else if (arg == "--list") {
        print_list();
        return 0;
      } else if (arg == "--perfect") {
        perfect = true;
      } else if (arg == "--strict") {
        strict = true;
      } else if (arg == "--filter") {
        filter = value();
      } else if (arg == "--out") {
        out_path = value();
      } else if (arg == "--format") {
        format = value();
      } else if (arg == "--name") {
        name = value();
      } else if (arg == "--metrics") {
        metrics_path = value();
      } else {
        throw Error("unknown option: " + arg + " (see --help)");
      }
    }

    const SweepSpec spec =
        SweepSpec::matrix(apps, cfgs, {perfect}).filtered(filter);
    if (spec.empty()) throw Error("the sweep spec selected no cells");

    Runner runner(opts);
    if (strict) runner.compile_cache().set_strict_verify(true);
    std::cerr << "[vuv_sweep] " << spec.size() << " cells on "
              << runner.jobs() << " worker(s)\n";
    const auto t0 = std::chrono::steady_clock::now();
    const std::vector<CellOutcome> outcomes = runner.run(spec);
    const double wall_s = std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - t0)
                              .count();

    format = cli::pick_format(format, out_path);
    const std::unique_ptr<Report> report = make_report(format, name);
    cli::write_output(out_path,
                      [&](std::ostream& os) { report->write(os, outcomes); });

    if (!metrics_path.empty())
      cli::write_output(metrics_path,
                        [&](std::ostream& os) { runner.metrics().write_json(os); });

    const CompileCache::Stats cs = runner.compile_cache().stats();
    std::cerr << "[vuv_sweep] " << outcomes.size() << " cells in "
              << TextTable::num(wall_s) << "s; compile cache: " << cs.misses
              << " compiled, " << cs.hits << " reused\n";
    if (serve::ResultCache* rc = runner.result_cache()) {
      const serve::ResultCache::Stats rs = rc->stats();
      std::cerr << "[vuv_sweep] result cache: " << rs.hits << " hit(s), "
                << rs.misses << " miss(es)";
      if (rs.corrupt) std::cerr << ", " << rs.corrupt << " corrupt";
      if (rs.evicted) std::cerr << ", " << rs.evicted << " evicted";
      std::cerr << "\n";
    }

    int failures = 0;
    for (const CellOutcome& o : outcomes)
      if (!o.result.verified) {
        ++failures;
        std::cerr << "[vuv_sweep] VERIFICATION FAILED: " << o.cell.key()
                  << ": " << o.result.verify_error << "\n";
      }
    return failures ? 1 : 0;
  } catch (const std::exception& e) {
    std::cerr << "vuv_sweep: " << e.what() << "\n";
    return 2;
  }
}
