// vuv_trace — cycle-level observability driver for a single (app, config,
// memory-mode) cell: run the simulator with a pipeline trace sink and the
// stall profiler attached, write a Chrome trace_event JSON (load it in
// chrome://tracing or https://ui.perfetto.dev) and a "top stalling ops"
// stall-attribution report.
//
//   vuv_trace --app gsm_dec --config Vector2-4w --trace gsm.trace.json
//   vuv_trace --app jpeg_enc --config VLIW-8w --profile - --top 10
//   vuv_trace --app mpeg2_dec --config Vector1-2w --perfect --profile m.json
//
// Output is deterministic: the same cell produces byte-identical trace and
// profile files on every run (tests/stall_trace_test.cpp locks this).
#include <iostream>

#include "cli.hpp"
#include "common/log.hpp"
#include "core/experiment.hpp"
#include "obs/profile_report.hpp"
#include "obs/trace.hpp"

using namespace vuv;

namespace {

const cli::Usage kUsage{
    "vuv_trace",
    "Trace one simulation cell: pipeline events + stall attribution.",
    "",
    {
        {"--app NAME",
         "app to run (default: gsm_dec)\n"
         "names: jpeg_enc jpeg_dec mpeg2_enc mpeg2_dec gsm_enc\n"
         "gsm_dec imgpipe"},
        {"--config NAME", "Table-2 configuration (default: Vector2-4w)"},
        {"--variant V",
         "code variant: scalar, musimd or vector\n"
         "(default: the best variant the config's ISA supports)"},
        {"--perfect", "simulate with perfect memory (paper 5.1)"},
        {"--trace PATH",
         "write the Chrome trace_event JSON to PATH (- = stdout)"},
        {"--profile PATH",
         "write the stall-attribution report to PATH (- = stdout;\n"
         ".json extension selects JSON, anything else text).\n"
         "Default: text report to stdout"},
        {"--top N",
         "ops listed in the top-stalling-ops section (default 20)"},
    },
    {
        "vuv_trace --app gsm_dec --config Vector2-4w --trace gsm.trace.json",
        "vuv_trace --app jpeg_enc --config VLIW-8w --profile - --top 10",
        "vuv_trace --app mpeg2_dec --config Vector1-2w --perfect --profile m.json",
    }};

Variant variant_by_name(const std::string& n) {
  if (n == "scalar") return Variant::kScalar;
  if (n == "musimd") return Variant::kMusimd;
  if (n == "vector") return Variant::kVector;
  throw Error("unknown variant '" + n + "' (scalar|musimd|vector)");
}

}  // namespace

int main(int argc, char** argv) {
  std::string app_name_s = "gsm_dec", config_name = "Vector2-4w";
  std::string variant_s, trace_path, profile_path;
  bool perfect = false;
  i32 top = 20;

  try {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      auto value = [&]() -> std::string {
        if (i + 1 >= argc) throw Error("missing value for " + arg);
        return argv[++i];
      };
      if (arg == "-h" || arg == "--help") {
        std::cout << kUsage.text();
        return 0;
      } else if (arg == "--app") {
        app_name_s = value();
      } else if (arg == "--config") {
        config_name = value();
      } else if (arg == "--variant") {
        variant_s = value();
      } else if (arg == "--perfect") {
        perfect = true;
      } else if (arg == "--trace") {
        trace_path = value();
      } else if (arg == "--profile") {
        profile_path = value();
      } else if (arg == "--top") {
        top = cli::parse_positive_int(arg, value());
      } else {
        throw Error("unknown option: " + arg + " (see --help)");
      }
    }

    const App app = app_by_name(app_name_s);
    MachineConfig cfg = MachineConfig::table2_by_name(config_name);
    cfg.mem.perfect = perfect;
    const Variant variant =
        variant_s.empty() ? variant_for(cfg.isa) : variant_by_name(variant_s);

    BuiltApp built = build_app(app, variant);
    const u32 used = built.ws->used();
    const ScheduledProgram sp = compile(std::move(built.program), cfg);

    Cpu cpu(sp, built.ws->mem());
    cpu.warm(0, used);  // steady-state working set, like every other driver
    obs::ChromeTraceSink sink;
    StallProfile profile;
    if (!trace_path.empty()) cpu.set_trace(&sink);
    cpu.set_profile(&profile);
    const SimResult res = cpu.run();

    const std::string verify_error = built.verify(*built.ws);
    if (!verify_error.empty())
      VUV_ERROR("vuv_trace: VERIFICATION FAILED: " << verify_error);

    if (!trace_path.empty()) {
      cli::write_output(trace_path,
                        [&](std::ostream& os) { sink.write(os); });
      std::cerr << "[vuv_trace] " << sink.events().size()
                << " trace events\n";
    }

    const obs::ProfileMeta meta{app_name_s, cfg.name,
                                perfect ? "perfect" : "realistic"};
    const std::vector<obs::ProfileRow> rows =
        obs::profile_rows(profile, sp.prog, cpu.image());
    const size_t top_n = static_cast<size_t>(top);
    cli::write_output(profile_path, [&](std::ostream& os) {
      if (profile_path.ends_with(".json"))
        obs::write_profile_json(os, meta, res, rows, top_n);
      else
        obs::write_profile_text(os, meta, res, rows, top_n);
    });

    return verify_error.empty() ? 0 : 1;
  } catch (const std::exception& e) {
    std::cerr << "vuv_trace: " << e.what() << "\n";
    return 2;
  }
}
